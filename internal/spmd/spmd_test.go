package spmd

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunBasics(t *testing.T) {
	var count int64
	err := Run(8, func(c *Comm) error {
		if c.Size() != 8 {
			t.Errorf("Size = %d", c.Size())
		}
		atomic.AddInt64(&count, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Errorf("ran %d ranks", count)
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if err := Run(0, func(*Comm) error { return nil }); err == nil {
		t.Error("expected error for size 0")
	}
}

func TestAlltoallvTranspose(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		err := Run(p, func(c *Comm) error {
			send := make([][]int, p)
			for dst := 0; dst < p; dst++ {
				// Unique payload per (src,dst), variable length.
				n := (c.Rank()+dst)%3 + 1
				for k := 0; k < n; k++ {
					send[dst] = append(send[dst], c.Rank()*1000+dst*10+k)
				}
			}
			recv := Alltoallv(c, send)
			for src := 0; src < p; src++ {
				n := (src+c.Rank())%3 + 1
				if len(recv[src]) != n {
					return fmt.Errorf("rank %d: recv[%d] has %d items, want %d",
						c.Rank(), src, len(recv[src]), n)
				}
				for k, v := range recv[src] {
					want := src*1000 + c.Rank()*10 + k
					if v != want {
						return fmt.Errorf("rank %d: recv[%d][%d] = %d, want %d",
							c.Rank(), src, k, v, want)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAlltoallvEmptyAndNil(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		send := make([][]byte, 4) // all nil
		recv := Alltoallv(c, send)
		for i, r := range recv {
			if len(r) != 0 {
				return fmt.Errorf("recv[%d] = %v, want empty", i, r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: repeated random exchanges always deliver the transpose.
func TestAlltoallvRandomized(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := int(pRaw)%6 + 1
		// Build the full matrix up front so every rank can verify.
		rng := rand.New(rand.NewSource(seed))
		mat := make([][][]uint32, p)
		for i := range mat {
			mat[i] = make([][]uint32, p)
			for j := range mat[i] {
				n := rng.Intn(5)
				for k := 0; k < n; k++ {
					mat[i][j] = append(mat[i][j], rng.Uint32())
				}
			}
		}
		ok := true
		err := Run(p, func(c *Comm) error {
			recv := Alltoallv(c, mat[c.Rank()])
			for src := 0; src < p; src++ {
				want := mat[src][c.Rank()]
				if len(recv[src]) != len(want) {
					return errors.New("length mismatch")
				}
				for k := range want {
					if recv[src][k] != want[k] {
						return errors.New("value mismatch")
					}
				}
			}
			return nil
		})
		if err != nil {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAlltoall(t *testing.T) {
	const p = 5
	err := Run(p, func(c *Comm) error {
		send := make([]int, p)
		for dst := range send {
			send[dst] = c.Rank()*100 + dst
		}
		recv := Alltoall(c, send)
		for src, v := range recv {
			if v != src*100+c.Rank() {
				return fmt.Errorf("recv[%d] = %d", src, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	const p = 7
	err := Run(p, func(c *Comm) error {
		r := int64(c.Rank())
		if got := AllreduceI64(c, r, OpSum); got != p*(p-1)/2 {
			return fmt.Errorf("sum = %d", got)
		}
		if got := AllreduceI64(c, r, OpMax); got != p-1 {
			return fmt.Errorf("max = %d", got)
		}
		if got := AllreduceI64(c, r, OpMin); got != 0 {
			return fmt.Errorf("min = %d", got)
		}
		if got := AllreduceF64(c, float64(c.Rank()), OpSum); got != float64(p*(p-1)/2) {
			return fmt.Errorf("fsum = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherBcastScan(t *testing.T) {
	const p = 6
	err := Run(p, func(c *Comm) error {
		got := Allgather(c, c.Rank()*2)
		for i, v := range got {
			if v != i*2 {
				return fmt.Errorf("Allgather[%d] = %d", i, v)
			}
		}
		if v := Bcast(c, c.Rank()+50, 3); v != 53 {
			return fmt.Errorf("Bcast = %d", v)
		}
		scan := ExclusiveScanI64(c, 10)
		if scan != int64(c.Rank()*10) {
			return fmt.Errorf("scan = %d", scan)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxReduceRegisters(t *testing.T) {
	const p = 4
	err := Run(p, func(c *Comm) error {
		regs := []uint8{byte(c.Rank()), byte(3 - c.Rank()), 7}
		out := MaxReduceRegisters(c, regs)
		want := []uint8{3, 3, 7}
		for i := range want {
			if out[i] != want[i] {
				return fmt.Errorf("out = %v", out)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorUnblocksWorld(t *testing.T) {
	// Rank 2 fails before the collective; the others must not deadlock.
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return errors.New("boom")
		}
		AllreduceI64(c, 1, OpSum) // would deadlock without poisoning
		return nil
	})
	if err == nil || err.Error() != "spmd: rank 2: boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicUnblocksWorld(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaput")
		}
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestBarrierOrdering(t *testing.T) {
	// After a barrier, every rank must observe all pre-barrier writes.
	const p = 8
	shared := make([]int, p)
	err := Run(p, func(c *Comm) error {
		shared[c.Rank()] = c.Rank() + 1
		c.Barrier()
		for i, v := range shared {
			if v != i+1 {
				return fmt.Errorf("rank %d saw shared[%d] = %d", c.Rank(), i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// fakeModel charges fixed costs so virtual-clock arithmetic is checkable.
type fakeModel struct{}

func (fakeModel) AlltoallvTime(callIdx int64, maxBytes float64) float64 {
	base := 1.0
	if callIdx == 0 {
		base = 2.0 // first-call penalty
	}
	return base + maxBytes/1000
}
func (fakeModel) CollectiveTime() float64 { return 0.5 }

func TestVirtualClockSynchronization(t *testing.T) {
	const p = 4
	err := RunWithModel(p, fakeModel{}, func(c *Comm) error {
		// Unequal local work.
		c.Tick(float64(c.Rank()))
		c.Barrier()
		// BSP: all clocks advance to max (3.0) plus collective cost 0.5.
		if c.Now() != 3.5 {
			return fmt.Errorf("rank %d clock = %v, want 3.5", c.Rank(), c.Now())
		}
		// First alltoallv: every rank sends 1000 bytes total (125 x8 ranks
		//... just check the busiest-rank accounting with unequal sizes).
		send := make([][]byte, p)
		send[(c.Rank()+1)%p] = make([]byte, 100*(c.Rank()+1)) // busiest rank sends 400
		recv := Alltoallv(c, send)
		_ = recv
		// cost = 2.0 (first call) + 400/1000
		want := 3.5 + 2.0 + 0.4
		if diff := c.Now() - want; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("rank %d clock = %v, want %v", c.Rank(), c.Now(), want)
		}
		// Second alltoallv is cheaper (no first-call penalty).
		Alltoallv(c, make([][]byte, p))
		want += 1.0
		if diff := c.Now() - want; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("rank %d clock after 2nd = %v, want %v", c.Rank(), c.Now(), want)
		}
		st := c.Stats()
		if st.Alltoallvs != 2 || st.Collectives != 1 {
			return fmt.Errorf("stats = %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTickNegativePanics(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		defer func() {
			if recover() == nil {
				t.Error("negative Tick did not panic")
			}
		}()
		c.Tick(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackedBufsRoundTrip(t *testing.T) {
	var p PackedBufs
	items := [][]byte{[]byte("AC"), {}, []byte("GGTT")}
	for _, it := range items {
		p.AppendItem(it)
	}
	got := p.Items()
	if len(got) != 3 || string(got[0]) != "AC" || len(got[1]) != 0 || string(got[2]) != "GGTT" {
		t.Errorf("Items = %q", got)
	}
}

func TestAlltoallvPacked(t *testing.T) {
	const p = 3
	err := Run(p, func(c *Comm) error {
		send := make([]PackedBufs, p)
		for dst := 0; dst < p; dst++ {
			send[dst].AppendItem([]byte(fmt.Sprintf("from%d-to%d", c.Rank(), dst)))
			send[dst].AppendItem([]byte{byte(c.Rank()), byte(dst)})
		}
		recv := AlltoallvPacked(c, send)
		for src := 0; src < p; src++ {
			items := recv[src].Items()
			if len(items) != 2 {
				return fmt.Errorf("recv[%d]: %d items", src, len(items))
			}
			want := fmt.Sprintf("from%d-to%d", src, c.Rank())
			if string(items[0]) != want {
				return fmt.Errorf("recv[%d][0] = %q, want %q", src, items[0], want)
			}
			if items[1][0] != byte(src) || items[1][1] != byte(c.Rank()) {
				return fmt.Errorf("recv[%d][1] = %v", src, items[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsBytesSent(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		send := [][]uint64{make([]uint64, 10), make([]uint64, 5)}
		Alltoallv(c, send)
		if got := c.Stats().BytesSent; got != 15*8 {
			return fmt.Errorf("BytesSent = %d, want 120", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWorldsAreIsolated(t *testing.T) {
	// Two worlds running simultaneously must not interfere: distinct
	// exchange matrices and barriers.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(world int) {
			defer wg.Done()
			errs[world] = Run(4, func(c *Comm) error {
				for iter := 0; iter < 50; iter++ {
					v := AllreduceI64(c, int64(world*100+c.Rank()), OpSum)
					want := int64(world*400 + 6) // 4*world*100 + 0+1+2+3
					if v != want {
						return fmt.Errorf("world %d iter %d: sum %d, want %d",
							world, iter, v, want)
					}
				}
				return nil
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("world %d: %v", w, err)
		}
	}
}

func TestManyRanksSmoke(t *testing.T) {
	// The figure harness runs hundreds of ranks; verify the world scales.
	const p = 128
	err := Run(p, func(c *Comm) error {
		v := AllreduceI64(c, 1, OpSum)
		if v != p {
			return fmt.Errorf("sum = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAlltoallv16(b *testing.B) {
	const p = 16
	payload := make([]byte, 1024)
	b.ResetTimer()
	err := Run(p, func(c *Comm) error {
		send := make([][]byte, p)
		for i := range send {
			send[i] = payload
		}
		for i := 0; i < b.N; i++ {
			Alltoallv(c, send)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBarrier8(b *testing.B) {
	err := Run(8, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
