package spmd

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The TCP backend's wire format: length-prefixed binary frames. Every
// frame is a fixed 31-byte header followed by the payload:
//
//	magic   uint16  0xD1BE ("diBElla"), catches stream desync/garbage
//	type    uint8   frameHello | framePeers | frameColl | frameAbort | frameJoin | frameAssign
//	seq     uint64  collective sequence number (frameColl only)
//	clock   float64 sender's virtual clock contribution (IEEE-754 bits)
//	bytes   float64 sender's total payload bytes this collective
//	plen    uint32  payload length
//	payload [plen]byte
//
// All integers are big-endian. Control frames (hello/peers) carry
// gob-encoded payloads; collective frames carry raw bytes whose meaning
// belongs to the typed layer.

type frameType uint8

const (
	// frameHello is the dialer's first frame on a new connection: its rank
	// and, on the rendezvous connection, its mesh listen address.
	frameHello frameType = iota + 1
	// framePeers is rank 0's rendezvous reply: every rank's mesh address.
	framePeers
	// frameColl carries one collective's payload for the receiving rank.
	frameColl
	// frameAbort poisons the receiver's world (a peer failed).
	frameAbort
	// frameJoin is a host agent's request to enter a host-list world: its
	// host index (or -1) and hostname, sent to the launcher's join port.
	frameJoin
	// frameAssign is the launcher's join reply: the agent's contiguous
	// rank range, the world size, and the rendezvous port.
	frameAssign
)

const (
	frameMagic      = 0xD1BE
	frameHeaderSize = 2 + 1 + 8 + 8 + 8 + 4
	// maxFramePayload bounds a single rank-to-rank transfer; a corrupt
	// length prefix fails fast instead of attempting a huge allocation.
	maxFramePayload = 1 << 30
)

// frame is one decoded wire frame.
type frame struct {
	Type    frameType
	Seq     uint64
	Clock   float64
	Bytes   float64
	Payload []byte
}

// appendFrameHeader encodes f's header into buf (which must have room for
// frameHeaderSize bytes).
func putFrameHeader(buf []byte, f *frame) {
	binary.BigEndian.PutUint16(buf[0:], frameMagic)
	buf[2] = byte(f.Type)
	binary.BigEndian.PutUint64(buf[3:], f.Seq)
	binary.BigEndian.PutUint64(buf[11:], math.Float64bits(f.Clock))
	binary.BigEndian.PutUint64(buf[19:], math.Float64bits(f.Bytes))
	binary.BigEndian.PutUint32(buf[27:], uint32(len(f.Payload)))
}

// writeFrame writes one frame to w.
func writeFrame(w io.Writer, f *frame) error {
	if len(f.Payload) > maxFramePayload {
		return fmt.Errorf("spmd: frame payload %d exceeds limit %d", len(f.Payload), maxFramePayload)
	}
	var hdr [frameHeaderSize]byte
	putFrameHeader(hdr[:], f)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame from r. The returned payload is freshly
// allocated and owned by the caller.
func readFrame(r io.Reader) (frame, error) {
	return readFrameBuf(r, func(n int) []byte { return make([]byte, n) })
}

// readFrameBuf reads one frame from r, obtaining the payload buffer from
// alloc (which must return a length-n slice). The pooled read path
// passes getFrameBuf; everything else allocates fresh.
func readFrameBuf(r io.Reader, alloc func(n int) []byte) (frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	if m := binary.BigEndian.Uint16(hdr[0:]); m != frameMagic {
		return frame{}, fmt.Errorf("spmd: bad frame magic %#04x (stream desync?)", m)
	}
	f := frame{
		Type:  frameType(hdr[2]),
		Seq:   binary.BigEndian.Uint64(hdr[3:]),
		Clock: math.Float64frombits(binary.BigEndian.Uint64(hdr[11:])),
		Bytes: math.Float64frombits(binary.BigEndian.Uint64(hdr[19:])),
	}
	if f.Type < frameHello || f.Type > frameAssign {
		return frame{}, fmt.Errorf("spmd: unknown frame type %d", f.Type)
	}
	plen := binary.BigEndian.Uint32(hdr[27:])
	if plen > maxFramePayload {
		return frame{}, fmt.Errorf("spmd: frame payload %d exceeds limit %d", plen, maxFramePayload)
	}
	if plen > 0 {
		f.Payload = alloc(int(plen))
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return frame{}, fmt.Errorf("spmd: short frame payload: %w", err)
		}
	}
	return f, nil
}
