package spmd

import "fmt"

// This file provides byte-accurate exchange of variable-length payloads
// ([]byte records such as read sequences). A real MPI code packs these into
// contiguous send buffers with a displacement vector before MPI_Alltoallv;
// we do the same so that (a) byte accounting for the communication model is
// exact and (b) the packing cost the paper reports as "Packing" in Fig. 4
// corresponds to real work.

// PackedBufs is one rank's packed send (or received) payload for a
// variable-length exchange: concatenated bytes plus item lengths.
type PackedBufs struct {
	Data []byte
	Lens []int32
}

// AppendItem adds one variable-length item to the buffer.
func (p *PackedBufs) AppendItem(item []byte) {
	p.Data = append(p.Data, item...)
	p.Lens = append(p.Lens, int32(len(item)))
}

// Items splits the packed data back into items. The returned slices alias
// Data.
func (p *PackedBufs) Items() [][]byte {
	out := make([][]byte, len(p.Lens))
	off := 0
	for i, n := range p.Lens {
		out[i] = p.Data[off : off+int(n)]
		off += int(n)
	}
	if off != len(p.Data) {
		panic(fmt.Sprintf("spmd: packed buffer corrupt: consumed %d of %d bytes", off, len(p.Data)))
	}
	return out
}

// AlltoallvPacked exchanges per-destination packed buffers: rank i's
// send[j] arrives as rank j's recv[i]. Byte accounting covers both the
// payload and the length vectors.
func AlltoallvPacked(c *Comm, send []PackedBufs) []PackedBufs {
	if len(send) != c.Size() {
		panic(fmt.Sprintf("spmd: AlltoallvPacked send length %d != world size %d", len(send), c.Size()))
	}
	data := make([][]byte, c.Size())
	lens := make([][]int32, c.Size())
	for i := range send {
		data[i] = send[i].Data
		lens[i] = send[i].Lens
	}
	rdata := Alltoallv(c, data)
	rlens := Alltoallv(c, lens)
	out := make([]PackedBufs, c.Size())
	for i := range out {
		out[i] = PackedBufs{Data: rdata[i], Lens: rlens[i]}
	}
	return out
}
