package spmd

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// runTCPWorld forms a Size-p TCP world on the loopback interface, one
// goroutine per rank (each with its own transport and real sockets), runs
// fn on every rank via RunTransport, and returns the world error exactly
// as RunWithModel would.
func runTCPWorld(t *testing.T, p int, model CommModel, fn func(*Comm) error) error {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("rendezvous listen: %v", err)
	}
	rendezvous := ln.Addr().String()
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := tcpConfig{
				Rank: rank, Size: p, Rendezvous: rendezvous,
				Timeout: 20 * time.Second,
			}
			if rank == 0 {
				cfg.Listener = ln
			}
			tr, err := dialTCP(cfg)
			if err != nil {
				errs[rank] = fmt.Errorf("rank %d: DialTCP: %w", rank, err)
				return
			}
			errs[rank] = RunTransport(tr, model, fn)
		}(r)
	}
	wg.Wait()
	return firstError(errs)
}

func TestTCPAlltoallvTranspose(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		err := runTCPWorld(t, p, nil, func(c *Comm) error {
			send := make([][]int32, p)
			for dst := 0; dst < p; dst++ {
				n := (c.Rank()+dst)%3 + 1
				for k := 0; k < n; k++ {
					send[dst] = append(send[dst], int32(c.Rank()*1000+dst*10+k))
				}
			}
			recv := Alltoallv(c, send)
			for src := 0; src < p; src++ {
				n := (src+c.Rank())%3 + 1
				if len(recv[src]) != n {
					return fmt.Errorf("rank %d: recv[%d] has %d items, want %d",
						c.Rank(), src, len(recv[src]), n)
				}
				for k, v := range recv[src] {
					if want := int32(src*1000 + c.Rank()*10 + k); v != want {
						return fmt.Errorf("rank %d: recv[%d][%d] = %d, want %d",
							c.Rank(), src, k, v, want)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestTCPSmallCollectives(t *testing.T) {
	const p = 4
	err := runTCPWorld(t, p, nil, func(c *Comm) error {
		if got := AllreduceI64(c, int64(c.Rank()), OpSum); got != p*(p-1)/2 {
			return fmt.Errorf("sum = %d", got)
		}
		if got := AllreduceF64(c, float64(c.Rank()), OpMax); got != p-1 {
			return fmt.Errorf("fmax = %v", got)
		}
		gathered := Allgather(c, fmt.Sprintf("rank-%d", c.Rank()))
		for i, s := range gathered {
			if s != fmt.Sprintf("rank-%d", i) {
				return fmt.Errorf("Allgather[%d] = %q", i, s)
			}
		}
		if v := Bcast(c, c.Rank()+50, 2); v != 52 {
			return fmt.Errorf("Bcast = %d", v)
		}
		if scan := ExclusiveScanI64(c, 10); scan != int64(c.Rank()*10) {
			return fmt.Errorf("scan = %d", scan)
		}
		regs := []uint8{byte(c.Rank()), byte(3 - c.Rank()), 7}
		out := MaxReduceRegisters(c, regs)
		if out[0] != 3 || out[1] != 3 || out[2] != 7 {
			return fmt.Errorf("MaxReduceRegisters = %v", out)
		}
		c.Barrier()
		if st := c.Stats(); st.Collectives != 7 {
			return fmt.Errorf("collectives = %d, want 7", st.Collectives)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherToBothBackends(t *testing.T) {
	const p, root = 4, 2
	program := func(c *Comm) error {
		got := GatherTo(c, fmt.Sprintf("r%d", c.Rank()), root)
		if c.Rank() != root {
			if got != nil {
				return fmt.Errorf("rank %d: non-root received %v", c.Rank(), got)
			}
			return nil
		}
		for i, s := range got {
			if s != fmt.Sprintf("r%d", i) {
				return fmt.Errorf("root got[%d] = %q", i, s)
			}
		}
		return nil
	}
	if err := Run(p, program); err != nil {
		t.Fatalf("mem backend: %v", err)
	}
	if err := runTCPWorld(t, p, nil, program); err != nil {
		t.Fatalf("tcp backend: %v", err)
	}
}

func TestTCPPackedExchange(t *testing.T) {
	const p = 3
	err := runTCPWorld(t, p, nil, func(c *Comm) error {
		send := make([]PackedBufs, p)
		for dst := 0; dst < p; dst++ {
			send[dst].AppendItem([]byte(fmt.Sprintf("from%d-to%d", c.Rank(), dst)))
			send[dst].AppendItem(nil)
			send[dst].AppendItem([]byte{byte(c.Rank()), byte(dst)})
		}
		recv := AlltoallvPacked(c, send)
		for src := 0; src < p; src++ {
			items := recv[src].Items()
			if len(items) != 3 {
				return fmt.Errorf("recv[%d]: %d items", src, len(items))
			}
			if want := fmt.Sprintf("from%d-to%d", src, c.Rank()); string(items[0]) != want {
				return fmt.Errorf("recv[%d][0] = %q, want %q", src, items[0], want)
			}
			if len(items[1]) != 0 {
				return fmt.Errorf("recv[%d][1] = %v, want empty", src, items[1])
			}
			if items[2][0] != byte(src) || items[2][1] != byte(c.Rank()) {
				return fmt.Errorf("recv[%d][2] = %v", src, items[2])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTCPMatchesMemTransport runs the same randomized exchange program on
// both backends and requires bit-identical results — the loopback
// equivalence the transports promise.
func TestTCPMatchesMemTransport(t *testing.T) {
	const p = 4
	const iters = 5
	// program produces, per rank, a deterministic digest of everything
	// received; both backends must agree exactly.
	program := func(c *Comm, digests [][]byte) error {
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 1))
		var out bytes.Buffer
		for it := 0; it < iters; it++ {
			send := make([][]uint64, p)
			for dst := 0; dst < p; dst++ {
				n := rng.Intn(6)
				for k := 0; k < n; k++ {
					send[dst] = append(send[dst], rng.Uint64())
				}
			}
			recv := Alltoallv(c, send)
			for src := 0; src < p; src++ {
				fmt.Fprintf(&out, "%d/%d:%x;", it, src, recv[src])
			}
			total := AllreduceI64(c, int64(len(recv[c.Rank()])), OpSum)
			fmt.Fprintf(&out, "sum=%d;", total)
		}
		digests[c.Rank()] = out.Bytes()
		return nil
	}
	memDigests := make([][]byte, p)
	if err := Run(p, func(c *Comm) error { return program(c, memDigests) }); err != nil {
		t.Fatalf("mem backend: %v", err)
	}
	tcpDigests := make([][]byte, p)
	if err := runTCPWorld(t, p, nil, func(c *Comm) error { return program(c, tcpDigests) }); err != nil {
		t.Fatalf("tcp backend: %v", err)
	}
	for r := 0; r < p; r++ {
		if !bytes.Equal(memDigests[r], tcpDigests[r]) {
			t.Errorf("rank %d digests differ:\n mem: %s\n tcp: %s", r, memDigests[r], tcpDigests[r])
		}
	}
}

// TestTCPVirtualClockMatchesMem checks BSP clock synchronization is
// transport-independent: the same modeled program yields the same clocks.
func TestTCPVirtualClockMatchesMem(t *testing.T) {
	const p = 4
	program := func(c *Comm) error {
		c.Tick(float64(c.Rank()))
		c.Barrier()
		if c.Now() != 3.5 {
			return fmt.Errorf("rank %d clock = %v after barrier, want 3.5", c.Rank(), c.Now())
		}
		send := make([][]byte, p)
		send[(c.Rank()+1)%p] = make([]byte, 100*(c.Rank()+1))
		Alltoallv(c, send)
		want := 3.5 + 2.0 + 0.4 // first-call penalty + busiest sender 400B
		if diff := c.Now() - want; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("rank %d clock = %v, want %v", c.Rank(), c.Now(), want)
		}
		return nil
	}
	if err := RunWithModel(p, fakeModel{}, program); err != nil {
		t.Fatalf("mem backend: %v", err)
	}
	if err := runTCPWorld(t, p, fakeModel{}, program); err != nil {
		t.Fatalf("tcp backend: %v", err)
	}
}

func TestTCPPeerFailureAbortsWorld(t *testing.T) {
	err := runTCPWorld(t, 4, nil, func(c *Comm) error {
		if c.Rank() == 2 {
			return errors.New("boom")
		}
		// The healthy ranks park in collectives; rank 2's abort must
		// unblock them rather than deadlock.
		AllreduceI64(c, 1, OpSum)
		c.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("expected world error")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want the originating failure", err)
	}
}

func TestTCPPeerPanicAbortsWorld(t *testing.T) {
	err := runTCPWorld(t, 3, nil, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaput")
		}
		c.Barrier()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v, want panic surfaced", err)
	}
}

func TestTCPAbortedCollectiveReturnsErrAborted(t *testing.T) {
	// Direct transport-level check: rank 1 aborts while rank 0 is blocked
	// waiting for its contribution.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]Transport, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := tcpConfig{Rank: rank, Size: 2, Rendezvous: ln.Addr().String()}
			if rank == 0 {
				cfg.Listener = ln
			}
			tr, err := dialTCP(cfg)
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			trs[rank] = tr
		}(r)
	}
	wg.Wait()
	if trs[0] == nil || trs[1] == nil {
		t.Fatal("world formation failed")
	}
	defer trs[0].Close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		trs[1].Abort()
	}()
	_, _, _, err = trs[0].Alltoallv(make([][]byte, 2), 0, 0)
	if !errors.Is(err, ErrAborted) {
		t.Errorf("blocked collective returned %v, want ErrAborted", err)
	}
	// Subsequent collectives on the aborted world fail fast, too.
	if _, err := trs[1].Barrier(0); !errors.Is(err, ErrAborted) {
		t.Errorf("collective after local abort returned %v, want ErrAborted", err)
	}
}

func TestTCPRejectsPointerElementTypes(t *testing.T) {
	err := runTCPWorld(t, 2, nil, func(c *Comm) error {
		defer func() {
			if recover() == nil {
				t.Error("Alltoallv of []string over TCP did not panic")
			}
		}()
		Alltoallv(c, make([][]string, 2))
		return nil
	})
	if !errors.Is(err, ErrAborted) && err != nil && !strings.Contains(err.Error(), "pointers") {
		t.Logf("world error (expected abort noise): %v", err)
	}
}

func TestDialTCPValidation(t *testing.T) {
	if _, err := dialTCP(tcpConfig{Rank: 0, Size: 0}); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := dialTCP(tcpConfig{Rank: 3, Size: 2, Rendezvous: "127.0.0.1:1"}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestDialTCPTimesOutWithoutPeers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	_, err = dialTCP(tcpConfig{
		Rank: 0, Size: 2, Listener: ln,
		Timeout: 200 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("rank 0 formed a world with no peers")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []frame{
		{Type: frameColl, Seq: 0, Clock: 0, Bytes: 0, Payload: nil},
		{Type: frameColl, Seq: 42, Clock: 1.25, Bytes: 4096, Payload: []byte("hello world")},
		{Type: frameHello, Payload: bytes.Repeat([]byte{0xAB}, 1<<16)},
		{Type: frameAbort, Seq: ^uint64(0), Clock: -1.5, Bytes: 1e308},
	}
	for i, f := range cases {
		var buf bytes.Buffer
		if err := writeFrame(&buf, &f); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("case %d: read: %v", i, err)
		}
		if got.Type != f.Type || got.Seq != f.Seq || got.Clock != f.Clock || got.Bytes != f.Bytes {
			t.Errorf("case %d: header mismatch: got %+v want %+v", i, got, f)
		}
		if !bytes.Equal(got.Payload, f.Payload) {
			t.Errorf("case %d: payload mismatch (%d vs %d bytes)", i, len(got.Payload), len(f.Payload))
		}
		if buf.Len() != 0 {
			t.Errorf("case %d: %d trailing bytes", i, buf.Len())
		}
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	// Bad magic.
	var buf bytes.Buffer
	writeFrame(&buf, &frame{Type: frameColl})
	raw := buf.Bytes()
	raw[0] ^= 0xFF
	if _, err := readFrame(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v", err)
	}

	// Unknown type.
	buf.Reset()
	writeFrame(&buf, &frame{Type: frameColl})
	raw = buf.Bytes()
	raw[2] = 99
	if _, err := readFrame(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "type") {
		t.Errorf("bad type: err = %v", err)
	}

	// Oversized length prefix must fail before allocating.
	buf.Reset()
	writeFrame(&buf, &frame{Type: frameColl})
	raw = buf.Bytes()
	raw[27], raw[28], raw[29], raw[30] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := readFrame(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("oversize: err = %v", err)
	}

	// Truncated payload.
	buf.Reset()
	writeFrame(&buf, &frame{Type: frameColl, Payload: []byte("abcdef")})
	raw = buf.Bytes()[:buf.Len()-3]
	if _, err := readFrame(bytes.NewReader(raw)); err == nil {
		t.Error("truncated payload: expected error")
	}

	// Oversized write is refused symmetrically.
	tooBig := frame{Type: frameColl, Payload: make([]byte, maxFramePayload+1)}
	if err := writeFrame(&bytes.Buffer{}, &tooBig); err == nil {
		t.Error("oversize write accepted")
	}
}
