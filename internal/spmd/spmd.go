// Package spmd is the distributed-memory substrate of the reproduction: an
// SPMD runtime standing in for MPI.
//
// The paper's diBELLA runs P MPI ranks (one per core) and communicates
// exclusively through bulk-synchronous collectives — MPI_Alltoall,
// MPI_Alltoallv, and reductions. Go has no MPI ecosystem, so this package
// redesigns the layer: typed collectives run over a pluggable byte-level
// Transport (see transport.go). The default backend keeps each rank as a
// goroutine and moves data through a shared exchange matrix guarded by a
// reusable cyclic barrier; the TCP backend (tcp.go) runs one OS process
// per rank with length-prefixed frames over per-peer connections.
// Collective semantics (every rank participates, data moves only at the
// collective, happens-before across the barrier) match MPI's on both
// backends, which is all the algorithm depends on.
//
// Two clocks are tracked per rank:
//
//   - wall time, i.e. real host time actually spent inside collectives,
//     used for host benchmarking; and
//   - a virtual clock, advanced by Tick for modeled local computation and
//     by a pluggable CommModel for modeled communication. The virtual
//     clock is what regenerates the paper's cross-architecture figures:
//     the same execution, priced under the Cori/Edison/Titan/AWS models.
//
// A collective synchronizes virtual clocks exactly as BSP prescribes:
// everyone advances to the maximum participant clock, then pays the modeled
// cost of the exchange.
package spmd

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"time"
	"unsafe"

	"dibella/internal/trace"
)

// Flight-recorder event names and metric names. Registered package-level
// constants, as the tracename analyzer requires.
const (
	traceBarrier   = "spmd.barrier"
	traceAlltoallv = "spmd.alltoallv"
	traceAllgather = "spmd.allgather"
	tracePost      = "spmd.post"
	traceChunkPost = "spmd.chunk_post"
	traceWait      = "spmd.wait"
	traceChunkWait = "spmd.chunk_wait"
	traceExchange  = "spmd.exchange"

	metricInflightExchanges = "dibella_spmd_inflight_exchanges"
	metricExchangesTotal    = "dibella_spmd_exchanges_total"
)

var (
	inflightExchanges = trace.RegisterGauge(metricInflightExchanges,
		"non-blocking exchanges posted but not yet waited, across local ranks")
	exchangesTotal = trace.RegisterCounter(metricExchangesTotal,
		"all-to-all exchanges completed, summed over local ranks")
)

// ErrAborted is delivered (via panic/recover inside Run and RunTransport)
// to ranks blocked in a collective when another rank fails, so a single
// error cannot deadlock the world.
var ErrAborted = errors.New("spmd: world aborted by another rank's failure")

// CommModel prices communication on a modeled platform. Implementations
// live in internal/machine; a nil model runs with zero-cost virtual
// communication (wall time is still measured).
type CommModel interface {
	// AlltoallvTime models one irregular all-to-all exchange in which the
	// busiest rank sends maxSendBytes in total. callIdx counts prior
	// all-to-all calls in this world (the paper observes MPI's first
	// Alltoallv is roughly twice as expensive as later calls; models use
	// callIdx to reproduce that).
	AlltoallvTime(callIdx int64, maxSendBytes float64) float64
	// CollectiveTime models a latency-bound small collective (barrier,
	// allreduce, allgather of scalars).
	CollectiveTime() float64
}

// Stats accumulates one rank's communication accounting.
//
// For non-blocking exchanges (IAlltoallv), ExchangeVirtual still carries
// the full modeled cost of every exchange, while OverlapVirtual counts the
// portion of that cost hidden under local computation between post and
// Wait — so elapsed modeled time is Exchange − Overlap. The wall clocks
// split the same way: ExchangeWall is time actually blocked (inside
// blocking collectives or Wait), OverlapWall is compute time that ran while
// at least the waited exchange was in flight.
type Stats struct {
	Alltoallvs      int64         // number of all-to-all exchanges
	Collectives     int64         // number of small collectives
	BytesSent       int64         // payload bytes this rank contributed
	ExchangeVirtual float64       // modeled seconds spent communicating
	OverlapVirtual  float64       // modeled exchange seconds hidden by compute
	ExchangeWall    time.Duration // real host time spent blocked in collectives
	OverlapWall     time.Duration // host compute time overlapping in-flight exchanges
}

// Comm is one rank's handle on the world: a Transport plus the rank's
// virtual clock and accounting. It is confined to that rank's goroutine
// (or process); only the transport synchronizes.
type Comm struct {
	tr      Transport
	model   CommModel
	clock   float64 // virtual seconds
	stats   Stats
	pending []uint64 // posted-but-unwaited non-blocking handles, FIFO
	nextID  uint64
	// Flight recorder (nil unless tracing is enabled; every emit on a nil
	// recorder is a no-op). postSeq numbers posted exchanges: posts are
	// collectively ordered, so post k on one rank and wait k on another
	// refer to the same exchange — that shared index is the flow id
	// linking them in the trace.
	rec     *trace.Recorder
	postSeq uint64
	// Overlap-wall attribution anchor: the wall instant (and blocked-time
	// watermark) up to which compute has already been credited to
	// Stats.OverlapWall. Valid while handles are pending; advanced at
	// every Wait so back-to-back handles never double-count a window.
	anchorWall     time.Time
	anchorExchWall time.Duration
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.tr.Rank() }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.tr.Size() }

// Now returns the rank's virtual clock in seconds.
func (c *Comm) Now() float64 { return c.clock }

// Tick advances the virtual clock by d seconds of modeled local compute.
func (c *Comm) Tick(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("spmd: negative tick %v", d))
	}
	c.clock += d
}

// Stats returns a copy of the rank's communication statistics.
func (c *Comm) Stats() Stats { return c.stats }

// Run executes fn on p goroutine ranks with no communication model and
// returns the first error any rank produced.
func Run(p int, fn func(*Comm) error) error { return RunWithModel(p, nil, fn) }

// RunWithModel executes fn on p goroutine ranks over the in-process
// transport, pricing communication with the given model. Panics inside a
// rank are recovered, abort the world (unblocking ranks parked in
// collectives), and surface as errors.
func RunWithModel(p int, model CommModel, fn func(*Comm) error) error {
	if p <= 0 {
		return fmt.Errorf("spmd: world size %d must be positive", p)
	}
	w := newMemWorld(p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(rank int) {
			defer wg.Done()
			errs[rank] = runRank(w.rank(rank), model, fn)
		}(r)
	}
	wg.Wait()
	return firstError(errs)
}

// RunTransport executes fn as one rank of an externally-formed world (for
// the in-process backend use Run, which forms the world itself). A
// returned error or panic aborts the transport so peers blocked in
// collectives unwind instead of deadlocking; ErrAborted from a peer's
// failure is returned as such. The transport is closed on return.
func RunTransport(tr Transport, model CommModel, fn func(*Comm) error) error {
	defer tr.Close()
	return runRank(tr, model, fn)
}

// commError marks a transport-level collective failure (torn connection,
// protocol divergence): an expected distributed failure mode that should
// surface as a one-line error, not a panic stack.
type commError struct{ error }

func (e commError) Unwrap() error { return e.error }

// runRank runs fn on one rank, converting panics (including collective
// aborts) into errors and poisoning the world on failure.
func runRank(tr Transport, model CommModel, fn func(*Comm) error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok && errors.Is(e, ErrAborted) {
				err = e
				return
			}
			if e, ok := rec.(commError); ok {
				err = e.error
				tr.Abort()
				return
			}
			buf := make([]byte, 8192)
			n := runtime.Stack(buf, false)
			err = fmt.Errorf("spmd: rank %d panicked: %v\n%s", tr.Rank(), rec, buf[:n])
			tr.Abort()
		}
	}()
	c := &Comm{tr: tr, model: model, rec: trace.Rec(tr.Rank())}
	if err := fn(c); err != nil {
		tr.Abort()
		return fmt.Errorf("spmd: rank %d: %w", tr.Rank(), err)
	}
	return nil
}

// firstError prefers a real failure over the secondary ErrAborted noise.
func firstError(errs []error) error {
	var aborted error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrAborted) {
			aborted = err
			continue
		}
		return err
	}
	return aborted
}

// collectiveFailed unwinds a rank whose transport-level collective failed.
// ErrAborted propagates as-is so Run's recovery recognizes a secondary
// failure; anything else (a torn connection, a protocol violation) is
// wrapped with the rank for diagnosis.
func collectiveFailed(c *Comm, op string, err error) {
	if errors.Is(err, ErrAborted) {
		panic(err)
	}
	panic(commError{fmt.Errorf("spmd: rank %d: %s: %w", c.Rank(), op, err)})
}

// requireIdle panics if a non-blocking exchange is still pending: a
// blocking collective issued between a post and its Wait would consume the
// pending exchange's frames on serializing transports and deliver wrong
// data, so the schedule error fails loudly instead.
func (c *Comm) requireIdle(op string) {
	if len(c.pending) > 0 {
		panic(fmt.Sprintf("spmd: rank %d issued blocking %s with %d non-blocking exchange(s) pending; Wait them first",
			c.Rank(), op, len(c.pending)))
	}
}

// Barrier synchronizes all ranks and their virtual clocks.
func (c *Comm) Barrier() {
	c.requireIdle("barrier")
	c.rec.Begin(traceBarrier, c.clock)
	start := time.Now()
	t, err := c.tr.Barrier(c.clock)
	if err != nil {
		collectiveFailed(c, "barrier", err)
	}
	c.clock = t + c.modelCollective()
	c.stats.Collectives++
	c.stats.ExchangeWall += time.Since(start)
	c.rec.End(traceBarrier, c.clock, 0)
}

func (c *Comm) modelCollective() float64 {
	if c.model == nil {
		return 0
	}
	d := c.model.CollectiveTime()
	c.stats.ExchangeVirtual += d
	return d
}

// elemSize reports the in-memory size of T's direct representation.
func elemSize[T any]() int {
	var zero T
	return int(unsafe.Sizeof(zero))
}

// podTypes caches which element types are plain old data (pointer-free),
// i.e. safe to ship across an address-space boundary by reinterpreting
// their memory. Keyed by reflect.Type, value bool.
var podTypes sync.Map

func isPOD[T any]() bool {
	rt := reflect.TypeFor[T]()
	if v, ok := podTypes.Load(rt); ok {
		return v.(bool)
	}
	pod := rt.Size() > 0 && !hasPointers(rt)
	podTypes.Store(rt, pod)
	return pod
}

func hasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32,
		reflect.Int64, reflect.Uint, reflect.Uint8, reflect.Uint16,
		reflect.Uint32, reflect.Uint64, reflect.Uintptr, reflect.Float32,
		reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return hasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// castToBytes reinterprets a []T as its raw bytes without copying.
func castToBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*elemSize[T]())
}

// castFromBytes turns raw bytes back into a []T. When shared, the bytes
// are the sender's own []T memory (correctly aligned by construction) and
// are reinterpreted in place, preserving the zero-copy semantics of the
// in-process backend; otherwise the bytes arrived from another process and
// are copied into a freshly allocated, properly aligned []T.
func castFromBytes[T any](b []byte, shared bool) []T {
	if len(b) == 0 {
		return nil
	}
	size := elemSize[T]()
	if len(b)%size != 0 {
		panic(fmt.Sprintf("spmd: received %d bytes, not a multiple of element size %d", len(b), size))
	}
	n := len(b) / size
	if shared {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]T, n)
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), len(b)), b)
	return out
}

// Alltoallv performs an irregular all-to-all: rank i's send[j] is delivered
// as rank j's recv[i]. send must have length Size. On the in-process
// backend the received slices alias the sender's memory (zero-copy, as
// intra-node MPI would); receivers must not mutate them. On serializing
// backends T must be pointer-free (fixed-size integers, floats, or
// structs/arrays of them) — variable-length payloads go through
// AlltoallvPacked.
func Alltoallv[T any](c *Comm, send [][]T) [][]T {
	p := c.Size()
	if len(send) != p {
		panic(fmt.Sprintf("spmd: Alltoallv send length %d != world size %d", len(send), p))
	}
	c.requireIdle("alltoallv")
	shared := c.tr.Shared()
	if !shared && !isPOD[T]() {
		panic(fmt.Sprintf("spmd: Alltoallv element type %T contains pointers and cannot cross an address-space boundary", *new(T)))
	}
	c.rec.Begin(traceAlltoallv, c.clock)
	start := time.Now()
	raw := make([][]byte, p)
	var myBytes int64
	for dst := 0; dst < p; dst++ {
		raw[dst] = castToBytes(send[dst])
		myBytes += int64(len(raw[dst]))
	}
	rraw, tmax, bmax, err := c.tr.Alltoallv(raw, c.clock, float64(myBytes))
	if err != nil {
		collectiveFailed(c, "alltoallv", err)
	}
	recv := make([][]T, p)
	rec, _ := c.tr.(recvBufRecycler)
	for src := 0; src < p; src++ {
		recv[src] = castFromBytes[T](rraw[src], shared)
		// The copy above ends the raw buffer's life — recycle it. The
		// rank's own column aliases the caller's send buffer, not a
		// pooled one; leave it alone.
		if rec != nil && !shared && src != c.Rank() {
			rec.RecycleRecvBuf(rraw[src])
		}
	}
	c.clock = tmax + c.modelAlltoallv(bmax)
	c.stats.Alltoallvs++
	c.stats.BytesSent += myBytes
	c.stats.ExchangeWall += time.Since(start)
	c.rec.End(traceAlltoallv, c.clock, myBytes)
	exchangesTotal.Inc()
	return recv
}

func (c *Comm) modelAlltoallv(maxBytes float64) float64 {
	if c.model == nil {
		return 0
	}
	d := c.model.AlltoallvTime(c.stats.Alltoallvs, maxBytes)
	c.stats.ExchangeVirtual += d
	return d
}

// modelStreamChunk prices one chunk round of a streamed exchange, falling
// back to full collective pricing on models without stream support.
func (c *Comm) modelStreamChunk(maxBytes float64) float64 {
	sm, ok := c.model.(streamCommModel)
	if !ok {
		return c.modelAlltoallv(maxBytes)
	}
	d := sm.StreamChunkTime(c.stats.Alltoallvs, maxBytes)
	c.stats.ExchangeVirtual += d
	return d
}

// Alltoall delivers exactly one element to every rank: rank i's send[j]
// becomes rank j's recv[i]. It matches MPI_Alltoall with count 1 and is
// how the pipeline exchanges per-destination counts before an Alltoallv.
func Alltoall[T any](c *Comm, send []T) []T {
	if len(send) != c.Size() {
		panic(fmt.Sprintf("spmd: Alltoall send length %d != world size %d", len(send), c.Size()))
	}
	per := make([][]T, c.Size())
	for i, v := range send {
		per[i] = []T{v}
	}
	parts := Alltoallv(c, per)
	out := make([]T, c.Size())
	for i, p := range parts {
		out[i] = p[0]
	}
	return out
}

// Op selects a reduction operator.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

// gatherVals runs the allgather protocol underlying the small collectives
// and returns this rank's view of all contributed values, in rank order.
// Shared-memory transports exchange the values directly; serializing
// transports move them as gob blobs (values must be gob-encodable).
func gatherVals[T any](c *Comm, v T) []T {
	c.requireIdle("allgather")
	c.rec.Begin(traceAllgather, c.clock)
	start := time.Now()
	var out []T
	var tmax float64
	if ag, ok := c.tr.(anyGatherer); ok {
		vals, t, err := ag.AllgatherAny(v, c.clock)
		if err != nil {
			collectiveFailed(c, "allgather", err)
		}
		out = make([]T, len(vals))
		for i, val := range vals {
			out[i] = val.(T)
		}
		tmax = t
	} else {
		blob, err := encodeGob(&v)
		if err != nil {
			panic(fmt.Errorf("spmd: allgather encode %T: %w", v, err))
		}
		blobs, t, err := c.tr.Allgather(blob, c.clock)
		if err != nil {
			collectiveFailed(c, "allgather", err)
		}
		out = make([]T, len(blobs))
		rec, _ := c.tr.(recvBufRecycler)
		for i, blob := range blobs {
			if err := decodeGob(blob, &out[i]); err != nil {
				panic(fmt.Errorf("spmd: allgather decode from rank %d: %w", i, err))
			}
			// Decoded: the raw blob can be reused. The own-rank column is
			// the caller-side encode buffer, not a pooled frame.
			if rec != nil && i != c.Rank() {
				rec.RecycleRecvBuf(blob)
			}
		}
		tmax = t
	}
	c.clock = tmax + c.modelCollective()
	c.stats.Collectives++
	c.stats.ExchangeWall += time.Since(start)
	c.rec.End(traceAllgather, c.clock, 0)
	return out
}

// AllreduceI64 reduces one int64 across ranks; every rank gets the result.
func AllreduceI64(c *Comm, v int64, op Op) int64 {
	vals := gatherVals(c, v)
	acc := vals[0]
	for _, x := range vals[1:] {
		switch op {
		case OpSum:
			acc += x
		case OpMax:
			if x > acc {
				acc = x
			}
		case OpMin:
			if x < acc {
				acc = x
			}
		}
	}
	return acc
}

// AllreduceF64 reduces one float64 across ranks; every rank gets the result.
func AllreduceF64(c *Comm, v float64, op Op) float64 {
	vals := gatherVals(c, v)
	acc := vals[0]
	for _, x := range vals[1:] {
		switch op {
		case OpSum:
			acc += x
		case OpMax:
			if x > acc {
				acc = x
			}
		case OpMin:
			if x < acc {
				acc = x
			}
		}
	}
	return acc
}

// Allgather collects one value from every rank, ordered by rank. On
// serializing transports the value must be gob-encodable.
func Allgather[T any](c *Comm, v T) []T { return gatherVals(c, v) }

// Bcast distributes root's value to all ranks.
func Bcast[T any](c *Comm, v T, root int) T {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("spmd: Bcast root %d out of range", root))
	}
	return gatherVals(c, v)[root]
}

// ExclusiveScanI64 returns the sum of v over ranks strictly below this one
// (0 on rank 0), the standard prefix used to assign global IDs.
func ExclusiveScanI64(c *Comm, v int64) int64 {
	vals := gatherVals(c, v)
	var sum int64
	for r := 0; r < c.Rank(); r++ {
		sum += vals[r]
	}
	return sum
}

// GatherTo collects one gob-encodable value from every rank on root
// (MPI_Gatherv): root receives all values in rank order, other ranks
// receive nil. Unlike Allgather, non-root values travel only to root —
// on a distributed backend that is 1x the payload over the wire instead
// of (P-1)x. It is implemented as one irregular all-to-all (with empty
// contributions everywhere but the root column), so its clock and
// statistics accounting is identical on every backend.
func GatherTo[T any](c *Comm, v T, root int) []T {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("spmd: GatherTo root %d out of range", root))
	}
	blob, err := encodeGob(&v)
	if err != nil {
		panic(fmt.Errorf("spmd: GatherTo encode %T: %w", v, err))
	}
	send := make([][]byte, c.Size())
	send[root] = blob
	recv := Alltoallv(c, send)
	if c.Rank() != root {
		return nil
	}
	out := make([]T, c.Size())
	for i, b := range recv {
		if err := decodeGob(b, &out[i]); err != nil {
			panic(fmt.Errorf("spmd: GatherTo decode from rank %d: %w", i, err))
		}
	}
	return out
}

// MaxReduceRegisters all-reduces HyperLogLog-style register arrays by
// element-wise max; every rank receives a fresh merged array.
//
// The contribution is deep-copied before the gather: on the shared-memory
// backend ranks read each other's arrays after leaving the collective, so
// sharing the caller's slice would race with any later mutation of it
// (e.g. installing the merged result back into the sketch).
func MaxReduceRegisters(c *Comm, regs []uint8) []uint8 {
	private := append([]uint8(nil), regs...)
	all := gatherVals(c, private)
	out := make([]uint8, len(regs))
	copy(out, all[0])
	for _, a := range all[1:] {
		if len(a) != len(out) {
			panic("spmd: register length mismatch in MaxReduceRegisters")
		}
		for i, v := range a {
			if v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}
