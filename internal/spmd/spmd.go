// Package spmd is the distributed-memory substrate of the reproduction: an
// in-process SPMD runtime standing in for MPI.
//
// The paper's diBELLA runs P MPI ranks (one per core) and communicates
// exclusively through bulk-synchronous collectives — MPI_Alltoall,
// MPI_Alltoallv, and reductions. Go has no MPI ecosystem, so this package
// redesigns the layer: each rank is a goroutine, and collectives are
// implemented over a shared exchange matrix guarded by a reusable cyclic
// barrier. Collective semantics (every rank participates, data moves only
// at the collective, happens-before across the barrier) match MPI's, which
// is all the algorithm depends on.
//
// Two clocks are tracked per rank:
//
//   - wall time, i.e. real host time actually spent inside collectives,
//     used for host benchmarking; and
//   - a virtual clock, advanced by Tick for modeled local computation and
//     by a pluggable CommModel for modeled communication. The virtual
//     clock is what regenerates the paper's cross-architecture figures:
//     the same execution, priced under the Cori/Edison/Titan/AWS models.
//
// A collective synchronizes virtual clocks exactly as BSP prescribes:
// everyone advances to the maximum participant clock, then pays the modeled
// cost of the exchange.
package spmd

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
	"unsafe"
)

// ErrAborted is delivered (via panic/recover inside Run) to ranks blocked
// in a collective when another rank fails, so a single error cannot
// deadlock the world.
var ErrAborted = errors.New("spmd: world aborted by another rank's failure")

// CommModel prices communication on a modeled platform. Implementations
// live in internal/machine; a nil model runs with zero-cost virtual
// communication (wall time is still measured).
type CommModel interface {
	// AlltoallvTime models one irregular all-to-all exchange in which the
	// busiest rank sends maxSendBytes in total. callIdx counts prior
	// all-to-all calls in this world (the paper observes MPI's first
	// Alltoallv is roughly twice as expensive as later calls; models use
	// callIdx to reproduce that).
	AlltoallvTime(callIdx int64, maxSendBytes float64) float64
	// CollectiveTime models a latency-bound small collective (barrier,
	// allreduce, allgather of scalars).
	CollectiveTime() float64
}

// Stats accumulates one rank's communication accounting.
type Stats struct {
	Alltoallvs      int64         // number of all-to-all exchanges
	Collectives     int64         // number of small collectives
	BytesSent       int64         // payload bytes this rank contributed
	ExchangeVirtual float64       // modeled seconds spent communicating
	ExchangeWall    time.Duration // real host time spent inside collectives
}

// World is the shared state of one SPMD execution.
type World struct {
	size  int
	cells [][]any // cells[src][dst]: staged payloads
	vals  []any   // per-rank slots for reductions/gathers
	bar   *barrier
	model CommModel
}

// Comm is one rank's handle on the world. It is confined to that rank's
// goroutine; only the world's shared structures synchronize.
type Comm struct {
	rank  int
	w     *World
	clock float64 // virtual seconds
	stats Stats
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.w.size }

// Now returns the rank's virtual clock in seconds.
func (c *Comm) Now() float64 { return c.clock }

// Tick advances the virtual clock by d seconds of modeled local compute.
func (c *Comm) Tick(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("spmd: negative tick %v", d))
	}
	c.clock += d
}

// Stats returns a copy of the rank's communication statistics.
func (c *Comm) Stats() Stats { return c.stats }

// Run executes fn on p goroutine ranks with no communication model and
// returns the first error any rank produced.
func Run(p int, fn func(*Comm) error) error { return RunWithModel(p, nil, fn) }

// RunWithModel executes fn on p goroutine ranks, pricing communication with
// the given model. Panics inside a rank are recovered, abort the world
// (unblocking ranks parked in collectives), and surface as errors.
func RunWithModel(p int, model CommModel, fn func(*Comm) error) error {
	if p <= 0 {
		return fmt.Errorf("spmd: world size %d must be positive", p)
	}
	w := &World{
		size:  p,
		cells: make([][]any, p),
		vals:  make([]any, p),
		bar:   newBarrier(p),
		model: model,
	}
	for i := range w.cells {
		w.cells[i] = make([]any, p)
	}

	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if err, ok := rec.(error); ok && errors.Is(err, ErrAborted) {
						errs[rank] = ErrAborted
						return
					}
					buf := make([]byte, 8192)
					n := runtime.Stack(buf, false)
					errs[rank] = fmt.Errorf("spmd: rank %d panicked: %v\n%s", rank, rec, buf[:n])
					w.bar.abort()
				}
			}()
			c := &Comm{rank: rank, w: w}
			if err := fn(c); err != nil {
				errs[rank] = fmt.Errorf("spmd: rank %d: %w", rank, err)
				w.bar.abort()
			}
		}(r)
	}
	wg.Wait()

	// Prefer a real failure over the secondary ErrAborted noise.
	var aborted error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrAborted) {
			aborted = err
			continue
		}
		return err
	}
	return aborted
}

// Barrier synchronizes all ranks and their virtual clocks.
func (c *Comm) Barrier() {
	start := time.Now()
	t, _ := c.w.bar.await(c.clock, 0)
	c.clock = t + c.modelCollective()
	c.stats.Collectives++
	c.stats.ExchangeWall += time.Since(start)
}

func (c *Comm) modelCollective() float64 {
	if c.w.model == nil {
		return 0
	}
	d := c.w.model.CollectiveTime()
	c.stats.ExchangeVirtual += d
	return d
}

// elemSize reports the in-memory size of T's direct representation. Types
// containing pointers (slices, strings) undercount payload bytes; use the
// byte-flattening helpers in flatten.go for such payloads, as a real MPI
// port would.
func elemSize[T any]() int {
	var zero T
	return int(unsafe.Sizeof(zero))
}

// Alltoallv performs an irregular all-to-all: rank i's send[j] is delivered
// as rank j's recv[i]. send must have length Size. The received slices
// alias the sender's memory (zero-copy, as intra-node MPI would); receivers
// must not mutate them.
func Alltoallv[T any](c *Comm, send [][]T) [][]T {
	w := c.w
	if len(send) != w.size {
		panic(fmt.Sprintf("spmd: Alltoallv send length %d != world size %d", len(send), w.size))
	}
	start := time.Now()
	var myBytes int64
	for dst := 0; dst < w.size; dst++ {
		w.cells[c.rank][dst] = send[dst]
		myBytes += int64(len(send[dst]) * elemSize[T]())
	}
	tmax, bmax := w.bar.await(c.clock, float64(myBytes))
	recv := make([][]T, w.size)
	for src := 0; src < w.size; src++ {
		if v := w.cells[src][c.rank]; v != nil {
			recv[src] = v.([]T)
		}
	}
	t2, _ := w.bar.await(tmax, 0)
	c.clock = t2 + c.modelAlltoallv(bmax)
	c.stats.Alltoallvs++
	c.stats.BytesSent += myBytes
	c.stats.ExchangeWall += time.Since(start)
	return recv
}

func (c *Comm) modelAlltoallv(maxBytes float64) float64 {
	if c.w.model == nil {
		return 0
	}
	d := c.w.model.AlltoallvTime(c.stats.Alltoallvs, maxBytes)
	c.stats.ExchangeVirtual += d
	return d
}

// Alltoall delivers exactly one element to every rank: rank i's send[j]
// becomes rank j's recv[i]. It matches MPI_Alltoall with count 1 and is
// how the pipeline exchanges per-destination counts before an Alltoallv.
func Alltoall[T any](c *Comm, send []T) []T {
	if len(send) != c.w.size {
		panic(fmt.Sprintf("spmd: Alltoall send length %d != world size %d", len(send), c.w.size))
	}
	per := make([][]T, c.w.size)
	for i, v := range send {
		per[i] = []T{v}
	}
	parts := Alltoallv(c, per)
	out := make([]T, c.w.size)
	for i, p := range parts {
		out[i] = p[0]
	}
	return out
}

// Op selects a reduction operator.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

// reduce runs the shared-slot reduction protocol and returns this rank's
// local view of all contributed values.
func gatherVals[T any](c *Comm, v T) []T {
	w := c.w
	start := time.Now()
	w.vals[c.rank] = v
	t, _ := w.bar.await(c.clock, 0)
	out := make([]T, w.size)
	for i := 0; i < w.size; i++ {
		out[i] = w.vals[i].(T)
	}
	t2, _ := w.bar.await(t, 0)
	c.clock = t2 + c.modelCollective()
	c.stats.Collectives++
	c.stats.ExchangeWall += time.Since(start)
	return out
}

// AllreduceI64 reduces one int64 across ranks; every rank gets the result.
func AllreduceI64(c *Comm, v int64, op Op) int64 {
	vals := gatherVals(c, v)
	acc := vals[0]
	for _, x := range vals[1:] {
		switch op {
		case OpSum:
			acc += x
		case OpMax:
			if x > acc {
				acc = x
			}
		case OpMin:
			if x < acc {
				acc = x
			}
		}
	}
	return acc
}

// AllreduceF64 reduces one float64 across ranks; every rank gets the result.
func AllreduceF64(c *Comm, v float64, op Op) float64 {
	vals := gatherVals(c, v)
	acc := vals[0]
	for _, x := range vals[1:] {
		switch op {
		case OpSum:
			acc += x
		case OpMax:
			if x > acc {
				acc = x
			}
		case OpMin:
			if x < acc {
				acc = x
			}
		}
	}
	return acc
}

// Allgather collects one value from every rank, ordered by rank.
func Allgather[T any](c *Comm, v T) []T { return gatherVals(c, v) }

// Bcast distributes root's value to all ranks.
func Bcast[T any](c *Comm, v T, root int) T {
	if root < 0 || root >= c.w.size {
		panic(fmt.Sprintf("spmd: Bcast root %d out of range", root))
	}
	return gatherVals(c, v)[root]
}

// ExclusiveScanI64 returns the sum of v over ranks strictly below this one
// (0 on rank 0), the standard prefix used to assign global IDs.
func ExclusiveScanI64(c *Comm, v int64) int64 {
	vals := gatherVals(c, v)
	var sum int64
	for r := 0; r < c.rank; r++ {
		sum += vals[r]
	}
	return sum
}

// MaxReduceRegisters all-reduces HyperLogLog-style register arrays by
// element-wise max; every rank receives a fresh merged array.
//
// The contribution is deep-copied before the gather: ranks read each
// other's arrays after leaving the collective, so sharing the caller's
// slice would race with any later mutation of it (e.g. installing the
// merged result back into the sketch).
func MaxReduceRegisters(c *Comm, regs []uint8) []uint8 {
	private := append([]uint8(nil), regs...)
	all := gatherVals(c, private)
	out := make([]uint8, len(regs))
	copy(out, all[0])
	for _, a := range all[1:] {
		if len(a) != len(out) {
			panic("spmd: register length mismatch in MaxReduceRegisters")
		}
		for i, v := range a {
			if v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}
