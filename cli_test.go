package dibella

// End-to-end CLI smoke tests: build the three commands and chain them the
// way a user would (seqgen -> dibella -> PAF). Skipped in -short mode to
// keep unit runs fast; the full suite exercises the actual binaries.

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dibella/internal/paf"
)

func buildTool(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func TestCLIPipelineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	dir := t.TempDir()
	seqgen := buildTool(t, dir, "./cmd/seqgen")
	dibella := buildTool(t, dir, "./cmd/dibella")

	reads := filepath.Join(dir, "reads.fastq")
	truth := filepath.Join(dir, "truth.tsv")
	out, err := exec.Command(seqgen,
		"-genome", "20000", "-coverage", "12", "-mean-len", "1200",
		"-error-rate", "0.1", "-seed", "3",
		"-out", reads, "-truth", truth, "-min-overlap", "400",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("seqgen: %v\n%s", err, out)
	}
	if fi, err := os.Stat(reads); err != nil || fi.Size() == 0 {
		t.Fatalf("seqgen wrote nothing: %v", err)
	}

	pafPath := filepath.Join(dir, "overlaps.paf")
	out, err = exec.Command(dibella,
		"-in", reads, "-out", pafPath, "-p", "4", "-k", "17",
		"-seed-mode", "one", "-breakdown",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("dibella: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "alignments=") {
		t.Errorf("missing summary in output:\n%s", out)
	}
	if !strings.Contains(string(out), "sched=streamed") {
		t.Errorf("default run is not the streamed schedule:\n%s", out)
	}
	if !strings.Contains(string(out), "Alignment") {
		t.Errorf("missing breakdown in output:\n%s", out)
	}

	f, err := os.Open(pafPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := paf.Parse(f)
	if err != nil {
		t.Fatalf("CLI PAF output does not parse: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("CLI produced no alignments")
	}

	// Ground-truth file sanity.
	tdata, err := os.ReadFile(truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(string(tdata)), "\n")) < 2 {
		t.Error("truth file suspiciously small")
	}
}

// TestCLITCPTransportMatchesMem is the acceptance check for the TCP
// backend: the same seeded read set run with -transport tcp across 4 real
// worker OS processes must produce byte-identical PAF output to the
// default in-process run.
func TestCLITCPTransportMatchesMem(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	dir := t.TempDir()
	seqgen := buildTool(t, dir, "./cmd/seqgen")
	dibella := buildTool(t, dir, "./cmd/dibella")

	reads := filepath.Join(dir, "reads.fastq")
	if out, err := exec.Command(seqgen,
		"-genome", "30000", "-coverage", "10", "-mean-len", "1500",
		"-error-rate", "0.06", "-seed", "11", "-out", reads,
	).CombinedOutput(); err != nil {
		t.Fatalf("seqgen: %v\n%s", err, out)
	}

	memPAF := filepath.Join(dir, "mem.paf")
	tcpPAF := filepath.Join(dir, "tcp.paf")
	common := []string{"-in", reads, "-p", "4", "-k", "17", "-error-rate", "0.06"}
	if out, err := exec.Command(dibella,
		append(common, "-out", memPAF)...).CombinedOutput(); err != nil {
		t.Fatalf("dibella -transport mem: %v\n%s", err, out)
	}
	out, err := exec.Command(dibella,
		append(common, "-transport", "tcp", "-out", tcpPAF)...).CombinedOutput()
	if err != nil {
		t.Fatalf("dibella -transport tcp: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "launching 3 worker processes") {
		t.Errorf("tcp run did not fork workers:\n%s", out)
	}

	memBytes, err := os.ReadFile(memPAF)
	if err != nil {
		t.Fatal(err)
	}
	tcpBytes, err := os.ReadFile(tcpPAF)
	if err != nil {
		t.Fatal(err)
	}
	if len(memBytes) == 0 {
		t.Fatal("mem run produced an empty PAF")
	}
	if !bytes.Equal(memBytes, tcpBytes) {
		t.Errorf("PAF output differs between transports (%d vs %d bytes)",
			len(memBytes), len(tcpBytes))
	}
}

// TestCLIHostListMatchesMem is the multi-host acceptance check: a 4-rank
// world spanning two simulated "hosts" (-hosts 127.0.0.1,127.0.0.1 forks
// a real `-join` agent process for the second host, which forks its own
// worker) must produce byte-identical PAF to the in-process run, with
// each rank parsing only its byte-range shard of the input.
func TestCLIHostListMatchesMem(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	dir := t.TempDir()
	seqgen := buildTool(t, dir, "./cmd/seqgen")
	dibella := buildTool(t, dir, "./cmd/dibella")

	reads := filepath.Join(dir, "reads.fastq")
	if out, err := exec.Command(seqgen,
		"-genome", "30000", "-coverage", "10", "-mean-len", "1500",
		"-error-rate", "0.06", "-seed", "11", "-out", reads,
	).CombinedOutput(); err != nil {
		t.Fatalf("seqgen: %v\n%s", err, out)
	}
	readsSize := func() int64 {
		fi, err := os.Stat(reads)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}()

	memPAF := filepath.Join(dir, "mem.paf")
	hostsPAF := filepath.Join(dir, "hosts.paf")
	common := []string{"-in", reads, "-p", "4", "-k", "17", "-error-rate", "0.06"}
	if out, err := exec.Command(dibella,
		append(common, "-out", memPAF)...).CombinedOutput(); err != nil {
		t.Fatalf("dibella -transport mem: %v\n%s", err, out)
	}
	out, err := exec.Command(dibella, append(common,
		"-transport", "tcp", "-hosts", "127.0.0.1,127.0.0.1",
		"-breakdown", "-out", hostsPAF)...).CombinedOutput()
	if err != nil {
		t.Fatalf("dibella -hosts: %v\n%s", err, out)
	}
	for _, want := range []string{
		"world of 4 ranks over 2 hosts", // launcher banner
		"joined, assigned ranks 2-3",    // the simulated host's join
		"[host 1] ",                     // its prefixed agent output
		"input bytes parsed per rank:",  // the cooperative-I/O counter
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("hosts run output missing %q:\n%s", want, out)
		}
	}
	// Each rank parsed a proper shard and the shards tile the file.
	for _, line := range strings.Split(string(out), "\n") {
		rest, ok := strings.CutPrefix(line, "input bytes parsed per rank:")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) != 4 {
			t.Fatalf("expected 4 per-rank counters, got %q", line)
		}
		var sum int64
		for r, f := range fields {
			n, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				t.Fatalf("counter %q: %v", f, err)
			}
			if n <= 0 || n >= readsSize {
				t.Errorf("rank %d parsed %d bytes of a %d-byte file, want a proper shard", r, n, readsSize)
			}
			sum += n
		}
		if sum != readsSize {
			t.Errorf("per-rank counters sum to %d, file is %d bytes", sum, readsSize)
		}
	}

	memBytes, err := os.ReadFile(memPAF)
	if err != nil {
		t.Fatal(err)
	}
	hostsBytes, err := os.ReadFile(hostsPAF)
	if err != nil {
		t.Fatal(err)
	}
	if len(memBytes) == 0 {
		t.Fatal("mem run produced an empty PAF")
	}
	if !bytes.Equal(memBytes, hostsBytes) {
		t.Errorf("PAF output differs between mem and -hosts runs (%d vs %d bytes)",
			len(memBytes), len(hostsBytes))
	}

	// The internal worker plumbing is env-based now; the old flags must
	// be rejected, not silently accepted.
	if out, err := exec.Command(dibella,
		"-in", reads, "-rank", "1", "-rendezvous", "127.0.0.1:9").CombinedOutput(); err == nil {
		t.Errorf("-rank/-rendezvous accepted:\n%s", out)
	}
}

// TestCLICheckpointResume is the operator-level restart drill: snapshot
// a run, kill it right after the DHT boundary commits (-ckpt-abort-after,
// exit 3), resume at a different world size on both transports, and
// require PAF byte-identical to the uninterrupted run.
func TestCLICheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	dir := t.TempDir()
	seqgen := buildTool(t, dir, "./cmd/seqgen")
	dibella := buildTool(t, dir, "./cmd/dibella")

	reads := filepath.Join(dir, "reads.fastq")
	if out, err := exec.Command(seqgen,
		"-genome", "20000", "-coverage", "10", "-mean-len", "1500",
		"-error-rate", "0.06", "-seed", "7", "-out", reads,
	).CombinedOutput(); err != nil {
		t.Fatalf("seqgen: %v\n%s", err, out)
	}

	freshPAF := filepath.Join(dir, "fresh.paf")
	if out, err := exec.Command(dibella,
		"-in", reads, "-p", "4", "-k", "17", "-error-rate", "0.06", "-out", freshPAF,
	).CombinedOutput(); err != nil {
		t.Fatalf("fresh run: %v\n%s", err, out)
	}
	freshBytes, err := os.ReadFile(freshPAF)
	if err != nil {
		t.Fatal(err)
	}
	if len(freshBytes) == 0 {
		t.Fatal("fresh run produced an empty PAF")
	}

	// Snapshot and kill after the DHT stage commits.
	ck := filepath.Join(dir, "ck")
	out, err := exec.Command(dibella,
		"-in", reads, "-p", "4", "-k", "17", "-error-rate", "0.06",
		"-ckpt-dir", ck, "-ckpt-abort-after", "dht",
	).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("kill run: want exit 3, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "aborted after checkpoint") {
		t.Errorf("kill run output missing abort notice:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(ck, "manifest.json")); err != nil {
		t.Fatalf("no manifest after kill: %v", err)
	}

	// Elastic resume at P=2 (mem) and P=3 (tcp worker processes).
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"mem-p2", []string{"-resume", ck, "-p", "2"}},
		{"tcp-p3", []string{"-resume", ck, "-p", "3", "-transport", "tcp"}},
	} {
		resumedPAF := filepath.Join(dir, tc.name+".paf")
		out, err := exec.Command(dibella, append(tc.args, "-out", resumedPAF)...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", tc.name, err, out)
		}
		if !strings.Contains(string(out), "resumed "+ck) {
			t.Errorf("%s output missing resume notice:\n%s", tc.name, out)
		}
		resumedBytes, err := os.ReadFile(resumedPAF)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(freshBytes, resumedBytes) {
			t.Errorf("%s: resumed PAF differs from fresh run (%d vs %d bytes)",
				tc.name, len(resumedBytes), len(freshBytes))
		}
	}

	// Output-affecting flags are rejected with -resume.
	if out, err := exec.Command(dibella, "-resume", ck, "-k", "19").CombinedOutput(); err == nil {
		t.Errorf("-resume -k accepted:\n%s", out)
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("-resume -k: want usage exit 2, got %v\n%s", err, out)
	}
}

// startHostLauncher launches a -hosts world whose second host must be
// joined externally, and returns the advertised join address plus the
// command (still running).
func startHostLauncher(t *testing.T, dibella string, args []string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(dibella, args...)
	var buf bytes.Buffer
	pr, pw := io.Pipe()
	cmd.Stdout = &buf
	cmd.Stderr = io.MultiWriter(&buf, pw)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "join address "); i >= 0 {
				addrCh <- strings.TrimSpace(line[i+len("join address "):])
				break
			}
		}
		io.Copy(io.Discard, pr) // keep draining so the child never blocks
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr, &buf
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("launcher never printed a join address:\n%s", buf.String())
		return nil, "", nil
	}
}

// TestCLIJoinConfigShipping: a `dibella -join <addr>` agent with no
// config flags must receive the launcher's resolved configuration in the
// formation handshake and produce the same output as an in-process run;
// an agent passing a conflicting config flag must fail formation with a
// clear error naming the flag.
func TestCLIJoinConfigShipping(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	dir := t.TempDir()
	seqgen := buildTool(t, dir, "./cmd/seqgen")
	dibella := buildTool(t, dir, "./cmd/dibella")

	reads := filepath.Join(dir, "reads.fastq")
	if out, err := exec.Command(seqgen,
		"-genome", "20000", "-coverage", "10", "-mean-len", "1500",
		"-error-rate", "0.06", "-seed", "11", "-out", reads,
	).CombinedOutput(); err != nil {
		t.Fatalf("seqgen: %v\n%s", err, out)
	}
	memPAF := filepath.Join(dir, "mem.paf")
	if out, err := exec.Command(dibella,
		"-in", reads, "-p", "4", "-k", "17", "-error-rate", "0.06", "-out", memPAF,
	).CombinedOutput(); err != nil {
		t.Fatalf("mem run: %v\n%s", err, out)
	}
	memBytes, err := os.ReadFile(memPAF)
	if err != nil {
		t.Fatal(err)
	}

	// "farhost" is not loopback, so the launcher waits for a real join
	// instead of simulating the second host.
	hostsPAF := filepath.Join(dir, "hosts.paf")
	launcher, joinAddr, launcherOut := startHostLauncher(t, dibella, []string{
		"-in", reads, "-p", "4", "-k", "17", "-error-rate", "0.06",
		"-hosts", "127.0.0.1:2,farhost:2", "-out", hostsPAF,
	})
	// The join address advertises the unresolvable host name; dial the
	// launcher over loopback instead.
	_, port, err := net.SplitHostPort(joinAddr)
	if err != nil {
		t.Fatalf("join address %q: %v", joinAddr, err)
	}
	// The agent passes no config flags at all: everything ships in the
	// assignment.
	agentOut, agentErr := exec.Command(dibella, "-join", "127.0.0.1:"+port).CombinedOutput()
	launchErr := launcher.Wait()
	if agentErr != nil {
		t.Fatalf("bare -join agent: %v\n%s", agentErr, agentOut)
	}
	if launchErr != nil {
		t.Fatalf("launcher: %v\n%s", launchErr, launcherOut.String())
	}
	hostsBytes, err := os.ReadFile(hostsPAF)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memBytes, hostsBytes) {
		t.Errorf("shipped-config world PAF differs from mem run (%d vs %d bytes)",
			len(hostsBytes), len(memBytes))
	}

	// Conflicting explicit joiner flag: formation fails, naming the flag.
	launcher2, joinAddr2, launcher2Out := startHostLauncher(t, dibella, []string{
		"-in", reads, "-p", "4", "-k", "17", "-error-rate", "0.06",
		"-hosts", "127.0.0.1:2,farhost:2",
	})
	_, port2, err := net.SplitHostPort(joinAddr2)
	if err != nil {
		t.Fatal(err)
	}
	agentOut2, agentErr2 := exec.Command(dibella, "-join", "127.0.0.1:"+port2, "-k", "19").CombinedOutput()
	launcher2.Wait() // world aborts once the joiner bails; exit status is secondary
	_ = launcher2Out
	if agentErr2 == nil {
		t.Fatalf("conflicting -k joiner succeeded:\n%s", agentOut2)
	}
	for _, want := range []string{"conflict", "-k", "launcher says 17"} {
		if !strings.Contains(string(agentOut2), want) {
			t.Errorf("conflict error missing %q:\n%s", want, agentOut2)
		}
	}
}

func TestCLIBenchList(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test in short mode")
	}
	dir := t.TempDir()
	bench := buildTool(t, dir, "./cmd/dibella-bench")
	out, err := exec.Command(bench, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("dibella-bench -list: %v\n%s", err, out)
	}
	for _, id := range []string{"table1", "table2", "fig3", "fig13"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("missing experiment %q in list:\n%s", id, out)
		}
	}
	// Run the cheapest experiment end to end.
	out, err = exec.Command(bench, "-experiment", "table1", "-quiet").CombinedOutput()
	if err != nil {
		t.Fatalf("table1: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Cori") {
		t.Errorf("table1 output:\n%s", out)
	}
}

// TestCLIFlagValidation: nonsense numeric flags must be rejected at
// startup with a clear usage error (exit 2), not surface later as opaque
// panics or formation hangs. Unlike the other CLI smoke tests this one
// runs in -short mode too (and hence in CI): each case exits during flag
// validation, so the only real cost is one cached binary build.
func TestCLIFlagValidation(t *testing.T) {
	dir := t.TempDir()
	dibella := buildTool(t, dir, "./cmd/dibella")
	reads := filepath.Join(dir, "reads.fastq")
	if err := os.WriteFile(reads, []byte("@r0\nACGTACGTACGT\n+\nIIIIIIIIIIII\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-p", "0"}, "-p must be"},
		{[]string{"-p", "-3"}, "-p must be"},
		{[]string{"-k", "-1"}, "-k must be"},
		{[]string{"-k", "99"}, "-k must be"},
		{[]string{"-xdrop", "-7"}, "-xdrop must be"},
		{[]string{"-min-dist", "0"}, "-min-dist must be"},
		{[]string{"-m", "-2"}, "-m must be"},
		{[]string{"-error-rate", "1.5"}, "-error-rate must be"},
		{[]string{"-coverage", "0"}, "-coverage must be"},
		{[]string{"-genome", "-1"}, "-genome must be"},
		{[]string{"-nodes", "0"}, "-nodes must be"},
		{[]string{"-reply-chunk", "-1"}, "-reply-chunk must be"},
		{[]string{"-reply-depth", "0"}, "-reply-depth must be"},
		{[]string{"-reply-depth", "64"}, "-reply-depth must be"},
		{[]string{"-async-exchange=false", "-reply-chunk", "4096"}, "-reply-chunk streams"},
		{[]string{"-window", "0"}, "-window must be"},
		{[]string{"-seed", "foo"}, "unknown -seed"},
		{[]string{"-window", "7"}, "-window only applies"},
	}
	for _, tc := range cases {
		args := append([]string{"-in", reads}, tc.args...)
		out, err := exec.Command(dibella, args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("%v: want usage exit 2, got err=%v\n%s", tc.args, err, out)
			continue
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("%v: output missing %q:\n%s", tc.args, tc.want, out)
		}
	}
}
