// Quickstart: synthesize a small long-read data set, run the full diBELLA
// pipeline on 4 in-process ranks, and print the overlap alignments.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"dibella"
)

func main() {
	// A 1%-scale E. coli analogue: ~46 kbp genome at 30x PacBio-like
	// coverage (substitution for the paper's real PacBio input).
	reads, err := dibella.GenerateEColi30x(0.01, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %d long reads\n", len(reads))

	// Parameters: k and the reliable-k-mer cutoff m are derived from the
	// data characteristics exactly as BELLA's theory prescribes.
	cfg := dibella.Config{
		ErrorRate:      0.15,
		Coverage:       30,
		GenomeEst:      46400,
		SeedMode:       dibella.OneSeed,
		KeepAlignments: true,
	}
	rep, err := dibella.Run(4, reads, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Summary())
	fmt.Printf("derived parameters: k=%d m=%d\n", rep.Config.K, rep.Config.MaxFreq)

	// Print the first few alignments as PAF.
	fmt.Println("\nfirst alignments (PAF):")
	n := len(rep.Records)
	if n > 5 {
		rep.Records = rep.Records[:5]
	}
	if err := dibella.WritePAF(os.Stdout, rep, reads); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("... (%d total)\n", n)
}
