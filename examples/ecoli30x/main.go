// Strong-scaling study on the E. coli 30x analogue: runs the pipeline at
// increasing rank counts on the host and prints the per-stage breakdown —
// the same decomposition as the paper's Fig. 9, measured on your machine.
//
//	go run ./examples/ecoli30x [-scale 0.02] [-maxp 16]
package main

import (
	"flag"
	"fmt"
	"log"

	"dibella"
	"dibella/internal/pipeline"
	"dibella/internal/stats"
)

func main() {
	scale := flag.Float64("scale", 0.02, "genome scale factor")
	maxP := flag.Int("maxp", 16, "largest rank count")
	flag.Parse()

	reads, err := dibella.GenerateEColi30x(*scale, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("E. coli 30x analogue at scale %g: %d reads\n\n", *scale, len(reads))

	cfg := dibella.Config{K: 17, MaxFreq: 10, SeedMode: dibella.OneSeed}
	headers := []string{"ranks", "wall", "BF", "HT", "OV", "AL", "alignments", "imbalance"}
	var rows [][]string
	var base float64
	for p := 1; p <= *maxP; p *= 2 {
		rep, err := dibella.Run(p, reads, cfg)
		if err != nil {
			log.Fatal(err)
		}
		t := rep.WallTime.Seconds()
		if p == 1 {
			base = t
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.2fs", t),
			rep.StageWall(pipeline.StageBloom).Round(1e6).String(),
			rep.StageWall(pipeline.StageHash).Round(1e6).String(),
			rep.StageWall(pipeline.StageOverlap).Round(1e6).String(),
			rep.StageWall(pipeline.StageAlign).Round(1e6).String(),
			fmt.Sprintf("%d", rep.Alignments),
			fmt.Sprintf("%.3f", rep.AlignImbalance()),
		})
		fmt.Printf("p=%-3d %s  speedup %.2fx\n", p, rep.Summary(), base/t)
	}
	fmt.Println("\nper-stage host wall time (max over ranks):")
	fmt.Print(stats.FormatTable(headers, rows))
}
