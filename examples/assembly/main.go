// Downstream-consumer demo: feed diBELLA's alignments into the first moves
// of an overlap-layout-consensus assembler (§1: "alignment is a key step
// in long read assembly") — build the overlap graph, transitively reduce
// it (Myers-style string-graph thinning), report components and a layout
// estimate — and score overlap detection against the synthetic ground
// truth, BELLA-style.
//
//	go run ./examples/assembly [-scale 0.01]
package main

import (
	"flag"
	"fmt"
	"log"

	"dibella"
	"dibella/internal/evalx"
	"dibella/internal/olgraph"
	"dibella/internal/seqgen"
)

func main() {
	scale := flag.Float64("scale", 0.01, "genome scale factor")
	flag.Parse()

	ds, err := seqgen.Generate(seqgen.EColi30x(*scale, 23))
	if err != nil {
		log.Fatal(err)
	}
	reads := ds.Reads
	fmt.Printf("data set: %s\n", ds.Stats())

	rep, err := dibella.Run(8, reads, dibella.Config{
		K: 17, MaxFreq: 12,
		SeedMode:       dibella.MinDistance,
		MinDist:        500,
		MinAlignScore:  200, // keep confident overlaps only
		KeepAlignments: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Summary())

	// Quality versus ground truth (the generator records each read's true
	// genome interval).
	var pred []evalx.Pair
	for _, a := range rep.Records {
		pred = append(pred, evalx.Canon(a.A, a.B))
	}
	minOv := len(reads[0].Seq) / 3
	res := evalx.Evaluate(ds, pred, minOv)
	fmt.Printf("\nquality (truth = genomic overlap >= %d bp):\n  %s\n", minOv, res)
	for _, bin := range evalx.RecallByOverlapLength(ds, pred, []int{minOv, 2 * minOv, 3 * minOv}) {
		fmt.Printf("  overlap >= %5d bp: recall %.3f (%d/%d)\n",
			bin.MinLen, bin.Recall(), bin.Found, bin.Truth)
	}

	// Overlap graph: reads are vertices, best alignment per pair the edge,
	// weighted by aligned span (a direct overlap-length estimate; scores
	// under-count at 15% error because mismatches cancel matches).
	g := olgraph.New(len(reads))
	for _, a := range rep.Records {
		if err := g.AddEdge(a.A, a.B, a.AEnd-a.AStart); err != nil {
			log.Fatal(err)
		}
	}
	st := g.Degrees()
	fmt.Printf("\noverlap graph: %d reads, %d edges, mean degree %.1f, %d isolated\n",
		g.NumReads(), g.NumEdges(), st.Mean, st.Isolated)

	removed := g.TransitiveReduction()
	comps := g.Components()
	fmt.Printf("after transitive reduction: removed %d edges, %d components\n",
		removed, len(comps))

	giant := comps[0]
	layout := g.LayoutEstimate(giant, func(id uint32) int { return len(reads[id].Seq) })
	fmt.Printf("largest component: %d reads, layout estimate ~%d bp (true genome %d bp)\n",
		len(giant), layout, ds.Config.GenomeLen)
}
