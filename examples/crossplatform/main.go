// Cross-platform comparison: one real pipeline execution priced under
// each of the paper's four machine models (Cori, Edison, Titan, AWS) at a
// chosen node count — a single-point slice of the paper's Fig. 13.
//
//	go run ./examples/crossplatform [-nodes 8] [-scale 0.02]
package main

import (
	"flag"
	"fmt"
	"log"

	"dibella"
	"dibella/internal/pipeline"
	"dibella/internal/stats"
)

func main() {
	nodes := flag.Int("nodes", 8, "modeled node count")
	scale := flag.Float64("scale", 0.02, "genome scale factor")
	flag.Parse()

	reads, err := dibella.GenerateEColi30x(*scale, 11)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dibella.Config{K: 17, MaxFreq: 10, SeedMode: dibella.OneSeed}
	simRanks := 4 * *nodes
	if simRanks > 64 {
		simRanks = 64
	}

	fmt.Printf("E. coli 30x analogue (scale %g), %d modeled nodes\n\n", *scale, *nodes)
	headers := []string{"platform", "modeled s", "exchange s", "M align/s", "M k-mers/s (BF)"}
	var rows [][]string
	for _, plat := range []dibella.Platform{dibella.Cori, dibella.Edison, dibella.Titan, dibella.AWS} {
		rep, err := dibella.RunModeled(plat, *nodes, simRanks, reads, cfg)
		if err != nil {
			log.Fatal(err)
		}
		total := rep.TotalVirtual()
		var bag int64
		for _, rr := range rep.PerRank {
			bag += rr.Bloom.KmersParsed
		}
		rows = append(rows, []string{
			plat.Name,
			fmt.Sprintf("%.4f", total),
			fmt.Sprintf("%.4f", rep.ExchangeVirtual()),
			fmt.Sprintf("%.4f", float64(rep.Alignments)/total/1e6),
			fmt.Sprintf("%.1f", float64(bag)/rep.StageVirtual(pipeline.StageBloom)/1e6),
		})
	}
	fmt.Print(stats.FormatTable(headers, rows))
	fmt.Println("\n(the paper's ranking: Cori fastest overall; AWS slowest; " +
		"Titan the best network/compute balance)")
}
