package dibella

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	reads, err := GenerateEColi30x(0.004, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) == 0 {
		t.Fatal("no reads generated")
	}
	rep, err := Run(4, reads, Config{K: 17, KeepAlignments: true, SeedMode: OneSeed})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alignments == 0 {
		t.Fatal("no alignments computed")
	}
	var buf bytes.Buffer
	if err := WritePAF(&buf, rep, reads); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\t") {
		t.Error("PAF output empty")
	}
}

func TestFacadeModeled(t *testing.T) {
	reads, err := GenerateEColi30x(0.004, 42)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunModeled(Cori, 4, 8, reads, Config{K: 17})
	if err != nil {
		t.Fatal(err)
	}
	if rep.VirtualTime <= 0 {
		t.Error("modeled run produced no virtual time")
	}
	if _, err := RunModeled(Platform{}, 1, 1, reads, Config{K: 17}); err == nil {
		t.Error("degenerate platform accepted")
	}
}

func TestWritePAFRequiresKeepAlignments(t *testing.T) {
	reads, err := GenerateEColi30x(0.004, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(2, reads, Config{K: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePAF(&bytes.Buffer{}, rep, reads); err == nil {
		t.Error("expected KeepAlignments error")
	}
}

func TestGenerate100x(t *testing.T) {
	reads, err := GenerateEColi100x(0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) == 0 {
		t.Fatal("no reads")
	}
}
